package semicont

import (
	"errors"
	"fmt"
	"sync"

	"semicont/internal/audit"
	"semicont/internal/catalog"
	"semicont/internal/core"
	"semicont/internal/faults"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/stats"
	"semicont/internal/sweep"
	"semicont/internal/workload"
)

// Paper-default experiment scale (Section 4.1).
const (
	// PaperHorizonHours is the simulated duration of one trial in the
	// paper (1000 hours).
	PaperHorizonHours = 1000.0
	// PaperTrials is the number of independent trials per data point.
	PaperTrials = 5
)

// Seed-stream labels for rng.DeriveSeed; distinct consumers of
// randomness get decoupled streams.
const (
	seedCatalog uint64 = iota + 1
	seedPlacement
	seedArrivals
	seedClients
	seedInteract
	seedFaults
	seedSelector
)

// Scenario is one fully specified simulation run.
type Scenario struct {
	System System
	Policy Policy

	// Theta is the Zipf demand-skew parameter (paper convention:
	// 1 = uniform demand, negative = extremely skewed).
	Theta float64

	// HorizonHours is the simulated duration during which requests
	// arrive; in-flight streams always drain to completion afterwards.
	HorizonHours float64

	// LoadFactor scales the calibrated arrival rate; 1.0 (the default
	// when zero) reproduces the paper's offered load = capacity.
	LoadFactor float64

	// Seed selects the random streams. Equal scenarios with equal seeds
	// produce bit-identical results.
	Seed uint64

	// FailServer / FailAtHours optionally crash one server mid-run
	// (FailAtHours > 0 enables). Mutually exclusive with Faults.
	FailServer  int
	FailAtHours float64

	// Faults configures the fault process: stochastic failure/recovery
	// churn (exponential MTBF/MTTR per server) or a scripted trace. The
	// schedule is compiled up front from a seed stream split off
	// Scenario.Seed, so runs stay bit-identical regardless of
	// GOMAXPROCS. See internal/faults.
	Faults faults.Config

	// CheckInvariants enables per-event model assertions (slow; tests).
	CheckInvariants bool

	// Audit attaches the internal/audit invariant auditor: every engine
	// event is checked against the model's conservation laws (bandwidth
	// caps, the minimum-flow guarantee, client buffer bounds, EFTF feed
	// order, DRM hop/chain budgets, replica and storage accounting). A
	// violation aborts the run and Run returns it as a structured
	// *audit.Violation error naming the event, server, and request.
	// Slower than a bare run; tier-1 tests and the experiment registry
	// tests keep it on.
	Audit bool

	// AuditSample, with Audit set, checks the full cluster snapshot only
	// on every k-th engine event (k = AuditSample; 0 and 1 audit every
	// event). The choice is keyed to the deterministic event sequence
	// number — never wall time — so sampled audits reproduce
	// bit-identically at any GOMAXPROCS or worker count. The cheap
	// stateful taps (admission, migration, failure, recovery, chain,
	// replication, feed order) always fire, so the auditor's replica,
	// storage, and fault models stay exact; only the per-event snapshot
	// invariants are sampled. This is what keeps audited 10^6–10^7
	// request runs feasible.
	AuditSample int

	// Stats attaches the streaming distribution layer: per-request
	// wait, retry sojourn, glitch duration, migration count, and
	// degraded-park duration are recorded into O(1)-memory quantile
	// sketches returned as Result.Dist. Observations are pure
	// accumulation — enabling Stats cannot change any other field of
	// the result.
	Stats bool

	// Observer, when non-nil, receives admission/migration/finish
	// notifications (see internal/trace for a ready-made recorder).
	Observer Observer
}

// Observer mirrors the engine's lifecycle callback interface so that
// callers outside the internal tree can subscribe to events.
type Observer interface {
	OnAdmit(t float64, reqID int64, video, server int, viaMigration bool)
	OnReject(t float64, video int)
	OnMigrate(t float64, reqID int64, video, from, to int, rescue bool)
	OnFinish(t float64, reqID int64, video, server int)
	OnFailure(t float64, server int, rescued, dropped, parked int)
	OnRecovery(t float64, server int, cold bool)
	OnReplicate(t float64, video, from, to int)
}

// Result reports one simulation run.
type Result struct {
	// Utilization is the paper's headline metric: Σ accepted sizes /
	// (total bandwidth × horizon).
	Utilization float64
	// RejectionRatio is rejected / offered requests.
	RejectionRatio float64

	Arrivals int64
	Accepted int64
	Rejected int64

	AcceptedMb  float64
	DeliveredMb float64
	Completions int64

	Migrations       int64
	AdmissionsViaDRM int64
	MeanChainLength  float64
	MaxChainUsed     int

	RescuedStreams int64
	DroppedStreams int64

	// Fault-process accounting.
	Failures       int64
	Recoveries     int64
	ColdRecoveries int64

	// Admission retry-queue accounting: queued rejected arrivals, how
	// many were later admitted, and how many ran out of patience.
	RetriesQueued     int64
	RetriedAdmissions int64
	Reneged           int64

	// Degraded-mode playback accounting: streams parked at a failure to
	// play from their client buffers, and how each episode ended.
	DegradedParked   int64
	DegradedResumed  int64
	DegradedGlitches int64

	// GlitchedStreams counts playback interruptions under the
	// intermittent scheduler (always zero under minimum-flow).
	GlitchedStreams int64

	// Dynamic replication accounting.
	ReplicationsStarted   int64
	ReplicationsCompleted int64
	ReplicationsAborted   int64
	ReplicationsDeferred  int64
	ReplicatedMb          float64

	// ViewerPauses counts interactivity pauses applied to live streams.
	ViewerPauses int64

	// Patching accounting: joins served by tapping ongoing streams and
	// the data delivered over shared streams (free of server
	// bandwidth; excluded from AcceptedMb and Utilization).
	PatchedJoins int64
	SharedMb     float64

	// ArrivalRate is the calibrated Poisson rate, requests/second.
	ArrivalRate float64
	// TotalBandwidthMbps and HorizonSeconds are the utilization
	// denominator's factors, recorded for reproducibility.
	TotalBandwidthMbps float64
	HorizonSeconds     float64
	// StagingBufferMb is the client buffer implied by the policy's
	// StagingFrac for this catalog.
	StagingBufferMb float64
	// PlacedCopies and PlacementShortfall record the realized layout.
	PlacedCopies       int
	PlacementShortfall int
	// AuditedEvents is the number of engine events the invariant
	// auditor snapshot-checked (zero unless Scenario.Audit was set; the
	// run would have failed had any violated an invariant). With
	// Scenario.AuditSample > 1 this counts only the sampled events.
	AuditedEvents int64

	// Dist holds the streaming distribution sketches (nil unless
	// Scenario.Stats was set). It is deliberately the only
	// non-comparable field: tests comparing Results with == must run
	// with Stats off, or compare Dist separately via DistStats.Equal.
	Dist *DistStats
}

// Validate reports scenario errors.
func (sc Scenario) Validate() error {
	if err := sc.System.Validate(); err != nil {
		return err
	}
	if err := sc.Policy.Validate(); err != nil {
		return err
	}
	if !finite(sc.Theta) {
		return fmt.Errorf("semicont: Theta %g must be finite", sc.Theta)
	}
	if !finite(sc.HorizonHours) || sc.HorizonHours <= 0 {
		return fmt.Errorf("semicont: HorizonHours must be positive, got %g", sc.HorizonHours)
	}
	if !finite(sc.LoadFactor) || sc.LoadFactor < 0 {
		return fmt.Errorf("semicont: negative LoadFactor %g", sc.LoadFactor)
	}
	if sc.FailAtHours > 0 && (sc.FailServer < 0 || sc.FailServer >= sc.System.NumServers) {
		return fmt.Errorf("semicont: FailServer %d outside cluster of %d", sc.FailServer, sc.System.NumServers)
	}
	if err := sc.Faults.Validate(sc.System.NumServers); err != nil {
		return fmt.Errorf("semicont: %w", err)
	}
	if sc.FailAtHours > 0 && sc.Faults.Enabled() {
		return fmt.Errorf("semicont: FailAtHours and Faults are mutually exclusive (express the single failure as a trace)")
	}
	if sc.AuditSample < 0 {
		return fmt.Errorf("semicont: negative AuditSample %d", sc.AuditSample)
	}
	if sc.AuditSample > 1 && !sc.Audit {
		return fmt.Errorf("semicont: AuditSample %d without Audit", sc.AuditSample)
	}
	// Cross-checks the engine would otherwise reject after Validate has
	// passed: a validated scenario must build and run.
	if sc.Policy.StagingFrac > 0 {
		if rc := sc.Policy.receiveCap(); rc > 0 && rc < sc.System.ViewRate {
			return fmt.Errorf("semicont: ReceiveCap %g below ViewRate %g", rc, sc.System.ViewRate)
		}
	}
	for i, c := range sc.Policy.ClientMix {
		if c.ReceiveCap > 0 && c.ReceiveCap < sc.System.ViewRate {
			return fmt.Errorf("semicont: client class %d receive cap %g below view rate %g", i, c.ReceiveCap, sc.System.ViewRate)
		}
	}
	return nil
}

// Run executes one simulation and returns its result.
func Run(sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sys, pol := sc.System, sc.Policy

	cat, err := catalog.Generate(catalog.Config{
		NumVideos: sys.NumVideos,
		MinLength: sys.MinVideoLength,
		MaxLength: sys.MaxVideoLength,
		ViewRate:  sys.ViewRate,
		Theta:     sc.Theta,
	}, rng.New(rng.DeriveSeed(sc.Seed, seedCatalog)))
	if err != nil {
		return nil, err
	}

	lay, err := placement.Build(placementStrategy(pol), cat, sys.AvgCopies,
		sys.capacities(), rng.New(rng.DeriveSeed(sc.Seed, seedPlacement)))
	if err != nil {
		return nil, err
	}

	load := sc.LoadFactor
	if load == 0 {
		load = 1
	}
	rate, err := workload.CalibratedRate(cat, sys.TotalBandwidth(), load)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(cat, rate, rng.New(rng.DeriveSeed(sc.Seed, seedArrivals)))
	if err != nil {
		return nil, err
	}

	// Validate vetted the allocator choice; the resolved fields drive the
	// engine and the name rides along for the registry lookup.
	intermittent, spare, _ := pol.allocChoice()
	bufMb := pol.StagingFrac * cat.AvgSize()
	cfg := core.Config{
		ServerBandwidth: sys.bandwidths(),
		ViewRate:        sys.ViewRate,
		BufferCapacity:  bufMb,
		Workahead:       pol.StagingFrac > 0,
		Spare:           core.SpareDiscipline(spare),
		Allocator:       pol.Allocator,
		Selector:        pol.Selector,
		Planner:         pol.Planner,
		SelectorSeed:    rng.DeriveSeed(sc.Seed, seedSelector),
		Intermittent:    intermittent,
		ResumeGuard:     pol.ResumeGuard,
		CheckInvariants: sc.CheckInvariants,
		Migration: core.MigrationConfig{
			Enabled:     pol.Migration,
			MaxHops:     pol.maxHops(),
			MaxChain:    pol.maxChain(),
			SwitchDelay: pol.SwitchDelay,
		},
		Replication: core.ReplicationConfig{
			Enabled:     pol.Replicate,
			CopyRateCap: pol.ReplicationRate,
		},
		Patching: core.PatchingConfig{
			Enabled: pol.PatchWindowSec > 0,
			Window:  pol.PatchWindowSec,
		},
		Interactivity: core.InteractivityConfig{
			PauseProb: pol.PauseProb,
			MinPause:  pol.MinPauseSec,
			MaxPause:  pol.MaxPauseSec,
			Seed:      rng.DeriveSeed(sc.Seed, seedInteract),
		},
		Retry: core.RetryConfig{
			Enabled:  pol.RetryQueue,
			MaxQueue: pol.RetryMaxQueue,
			Patience: pol.RetryPatienceSec,
			Backoff:  pol.RetryBackoffSec,
		},
		Degraded: core.DegradedConfig{
			Enabled:       pol.DegradedPlayback,
			RetryInterval: pol.DegradedRetrySec,
		},
	}
	if pol.Replicate {
		cfg.ServerStorage = sys.capacities()
	}
	for _, cl := range pol.ClientMix {
		cfg.ClientClasses = append(cfg.ClientClasses, core.ClientClass{
			Weight:         cl.Weight,
			BufferCapacity: cl.StagingFrac * cat.AvgSize(),
			ReceiveCap:     cl.ReceiveCap,
		})
		if cl.StagingFrac > 0 {
			cfg.Workahead = true
		}
	}
	cfg.ClientSeed = rng.DeriveSeed(sc.Seed, seedClients)
	if cfg.Workahead {
		cfg.ReceiveCap = pol.receiveCap()
	}

	// Engines come from a pool: trial workers reuse one engine's event
	// queue, request freelist, and scratch across trials (Reset makes it
	// observationally identical to a fresh engine). An engine is returned
	// to the pool only after a successful run — error paths may leave it
	// mid-state, and errors are too rare to be worth salvaging from.
	eng, _ := enginePool.Get().(*core.Engine)
	if eng == nil {
		eng = new(core.Engine)
	}
	if err := eng.Reset(cfg, cat, lay, gen); err != nil {
		return nil, err
	}
	if sc.Observer != nil {
		eng.SetObserver(observerAdapter{sc.Observer})
	}
	var auditor *audit.Auditor
	if sc.Audit {
		auditor = audit.New()
		eng.SetAuditTap(auditor)
		eng.SetAuditSampling(sc.AuditSample)
	}
	var dist *DistStats
	if sc.Stats {
		dist = new(DistStats)
		dist.bind(eng)
	}
	horizon := sc.HorizonHours * 3600
	if sc.FailAtHours > 0 {
		if err := eng.ScheduleFailure(sc.FailAtHours*3600, sc.FailServer); err != nil {
			return nil, err
		}
	}
	if sc.Faults.Enabled() {
		sched, err := faults.Compile(sc.Faults, sys.NumServers, sc.HorizonHours,
			rng.DeriveSeed(sc.Seed, seedFaults))
		if err != nil {
			return nil, err
		}
		for _, fe := range sched {
			if fe.Recover {
				err = eng.ScheduleRecovery(fe.At, fe.Server, fe.Cold)
			} else {
				err = eng.ScheduleFailure(fe.At, fe.Server)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	m, err := eng.Run(horizon)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Utilization:           m.Utilization(sys.TotalBandwidth(), horizon),
		RejectionRatio:        m.RejectionRatio(),
		Arrivals:              m.Arrivals,
		Accepted:              m.Accepted,
		Rejected:              m.Rejected,
		AcceptedMb:            m.AcceptedBytes,
		DeliveredMb:           m.DeliveredBytes,
		Completions:           m.Completions,
		Migrations:            m.Migrations,
		AdmissionsViaDRM:      m.AdmissionsViaDRM,
		MaxChainUsed:          m.MaxChainUsed,
		RescuedStreams:        m.RescuedStreams,
		DroppedStreams:        m.DroppedStreams,
		Failures:              m.Failures,
		Recoveries:            m.Recoveries,
		ColdRecoveries:        m.ColdRecoveries,
		RetriesQueued:         m.RetriesQueued,
		RetriedAdmissions:     m.RetriedAdmissions,
		Reneged:               m.Reneged,
		DegradedParked:        m.DegradedParked,
		DegradedResumed:       m.DegradedResumed,
		DegradedGlitches:      m.DegradedGlitches,
		GlitchedStreams:       m.GlitchedStreams,
		ReplicationsStarted:   m.ReplicationsStarted,
		ReplicationsCompleted: m.ReplicationsCompleted,
		ReplicationsAborted:   m.ReplicationsAborted,
		ReplicationsDeferred:  m.ReplicationsDeferred,
		ReplicatedMb:          m.ReplicatedMb,
		ViewerPauses:          m.ViewerPauses,
		PatchedJoins:          m.PatchedJoins,
		SharedMb:              m.SharedMb,
		ArrivalRate:           rate,
		TotalBandwidthMbps:    sys.TotalBandwidth(),
		HorizonSeconds:        horizon,
		StagingBufferMb:       bufMb,
		PlacedCopies:          lay.TotalCopies(),
		PlacementShortfall:    lay.Shortfall(),
	}
	if m.AdmissionsViaDRM > 0 {
		res.MeanChainLength = float64(m.ChainLengthTotal) / float64(m.AdmissionsViaDRM)
	}
	if auditor != nil {
		res.AuditedEvents = int64(auditor.Events())
	}
	res.Dist = dist
	enginePool.Put(eng)
	return res, nil
}

// enginePool recycles engines across runs; see Run.
var enginePool sync.Pool

func placementStrategy(p Policy) placement.Strategy {
	switch p.Placement {
	case PredictivePlacement:
		return placement.Predictive{}
	case PartialPredictivePlacement:
		return placement.PartialPredictive{
			TopFraction: p.PartialTopFraction,
			Extra:       p.PartialExtra,
		}
	default:
		return placement.Even{}
	}
}

type observerAdapter struct{ o Observer }

func (a observerAdapter) OnAdmit(t float64, reqID int64, video, server int, viaMigration bool) {
	a.o.OnAdmit(t, reqID, video, server, viaMigration)
}
func (a observerAdapter) OnReject(t float64, video int) { a.o.OnReject(t, video) }
func (a observerAdapter) OnMigrate(t float64, reqID int64, video, from, to int, rescue bool) {
	a.o.OnMigrate(t, reqID, video, from, to, rescue)
}
func (a observerAdapter) OnFinish(t float64, reqID int64, video, server int) {
	a.o.OnFinish(t, reqID, video, server)
}
func (a observerAdapter) OnFailure(t float64, server int, rescued, dropped, parked int) {
	a.o.OnFailure(t, server, rescued, dropped, parked)
}
func (a observerAdapter) OnRecovery(t float64, server int, cold bool) {
	a.o.OnRecovery(t, server, cold)
}
func (a observerAdapter) OnReplicate(t float64, video, from, to int) {
	a.o.OnReplicate(t, video, from, to)
}

// Aggregate summarizes independent trials of one scenario.
type Aggregate struct {
	Scenario Scenario
	Results  []*Result

	Utilization stats.Sample
	Rejection   stats.Sample
	Migrations  stats.Sample

	// Dist is the trial-merged distribution aggregate (nil unless the
	// scenario ran with Stats). Trials are merged in submission order;
	// sketch merging is bit-for-bit order-independent anyway.
	Dist *DistStats
}

// trialSeedLabel decouples per-trial seed streams from the scenario
// seed ("trial").
const trialSeedLabel uint64 = 0x7472_69616c

// TrialScenario returns sc reseeded for one trial — the exact
// perturbation RunTrials applies, exposed so sweep cells submitted
// directly reproduce its trials bit-identically.
func TrialScenario(sc Scenario, trial int) Scenario {
	sc.Seed = rng.DeriveSeed(sc.Seed, trialSeedLabel, uint64(trial))
	return sc
}

// SubmitTrials submits one scenario's n trials as a cell on g and
// returns the cell's index into Wait's results. Experiment sweeps use
// this to flatten their whole (cell × trial) matrix onto one pool
// instead of fanning out per cell.
func SubmitTrials(g *sweep.Grid[*Result], sc Scenario, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("semicont: trial count must be positive, got %d", n)
	}
	if sc.Observer != nil {
		return 0, fmt.Errorf("semicont: observers are per-run; attach one via Run instead")
	}
	return g.Cell(n, func(trial int) (*Result, error) {
		return Run(TrialScenario(sc, trial))
	}), nil
}

// Summarize aggregates one cell's in-order trial results.
func Summarize(sc Scenario, results []*Result) *Aggregate {
	agg := &Aggregate{Scenario: sc, Results: results}
	for _, r := range results {
		agg.Utilization.Add(r.Utilization)
		agg.Rejection.Add(r.RejectionRatio)
		agg.Migrations.Add(float64(r.Migrations))
		if r.Dist != nil {
			if agg.Dist == nil {
				agg.Dist = new(DistStats)
			}
			agg.Dist.Merge(r.Dist)
		}
	}
	return agg
}

// RunTrials executes n independent trials (the trial index perturbs the
// seed) concurrently and aggregates the headline metrics. Trials are
// deterministic individually and aggregated in trial order, so the
// result is reproducible regardless of scheduling.
func RunTrials(sc Scenario, n int) (*Aggregate, error) {
	return RunTrialsOn(nil, sc, n)
}

// RunTrialsOn is RunTrials on a caller-supplied worker pool (nil gets a
// private GOMAXPROCS-sized one); sweeps sharing one pool across many
// scenarios bound total concurrency in one place.
func RunTrialsOn(p *sweep.Pool, sc Scenario, n int) (*Aggregate, error) {
	g := sweep.NewGrid[*Result](p)
	if _, err := SubmitTrials(g, sc, n); err != nil {
		return nil, err
	}
	cells, err := g.Wait()
	if err != nil {
		var ce *sweep.CellError
		if errors.As(err, &ce) {
			return nil, ce.Err // first trial error in index order, as before
		}
		return nil, err
	}
	return Summarize(sc, cells[0]), nil
}
