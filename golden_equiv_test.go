package semicont

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"semicont/internal/faults"
)

// Fixture loading and comparison live in golden_fixtures_test.go,
// shared with the shard-determinism suite.

// Golden equivalence fixtures: fixed-seed results for a scenario matrix
// spanning staging on/off × DRM hops × intermittent × patching (plus
// the extension mechanisms), captured from the pre-refactor allocation
// layer. The engine contract is bit-identical determinism — same seeds,
// same floats — so any allocator refactor must reproduce every field of
// every Result below exactly. Regenerate (only when a deliberate
// behavior change is made, with justification in the commit) with:
//
//	go test -run TestGoldenEquivalence -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_equiv.json from the current engine")

// goldenHorizonHours keeps each matrix cell fast while still processing
// tens of thousands of engine events.
const goldenHorizonHours = 2

// goldenMatrix returns the named scenario matrix. Every scenario uses
// the small system and a fixed seed so results are bit-reproducible.
func goldenMatrix() []struct {
	Name string
	Sc   Scenario
} {
	base := func(p Policy) Scenario {
		return Scenario{
			System:       SmallSystem(),
			Policy:       p,
			Theta:        0.271,
			HorizonHours: goldenHorizonHours,
			Seed:         7,
		}
	}
	drm := func(p Policy, hops, chain int) Policy {
		p.Migration, p.MaxHops, p.MaxChain = true, hops, chain
		return p
	}
	var m []struct {
		Name string
		Sc   Scenario
	}
	add := func(name string, sc Scenario) {
		m = append(m, struct {
			Name string
			Sc   Scenario
		}{name, sc})
	}

	// Staging off/on and the three spare disciplines.
	add("nostage", base(Policy{Name: "nostage"}))
	add("stage-eftf", base(Policy{Name: "stage-eftf", StagingFrac: 0.2}))
	add("stage-lftf", base(Policy{Name: "stage-lftf", StagingFrac: 0.2, Spare: LFTFSpare}))
	add("stage-evensplit", base(Policy{Name: "stage-evensplit", StagingFrac: 0.2, Spare: EvenSplitSpare}))

	// DRM hop/chain budgets, with and without staging.
	add("drm-nostage", base(drm(Policy{Name: "drm-nostage"}, 1, 1)))
	add("drm-hops1", base(drm(Policy{Name: "drm-hops1", StagingFrac: 0.2}, 1, 1)))
	add("drm-unlimited-chain2", base(drm(Policy{Name: "drm-unlimited-chain2", StagingFrac: 0.2}, UnlimitedHops, 2)))
	add("drm-switchdelay", base(drm(Policy{Name: "drm-switchdelay", StagingFrac: 0.2, SwitchDelay: 2}, UnlimitedHops, 1)))

	// Intermittent scheduling (over-subscription + glitch accounting).
	add("intermittent", base(drm(Policy{Name: "intermittent", StagingFrac: 0.2, Intermittent: true}, 1, 1)))
	add("intermittent-guard10", base(Policy{Name: "intermittent-guard10", StagingFrac: 0.3, Intermittent: true, ResumeGuard: 10}))

	// Patching (multicast taps pin streams; spare order interacts).
	add("patching", base(Policy{Name: "patching", StagingFrac: 0.2, PatchWindowSec: 300}))
	add("patching-drm", base(drm(Policy{Name: "patching-drm", StagingFrac: 0.2, PatchWindowSec: 600}, 1, 1)))

	// Extension mechanisms layered over the allocator.
	add("interactive", base(drm(Policy{Name: "interactive", StagingFrac: 0.2, PauseProb: 0.3, MinPauseSec: 30, MaxPauseSec: 300}, 1, 1)))
	add("replicate", base(drm(Policy{Name: "replicate", StagingFrac: 0.2, Replicate: true}, 1, 1)))
	add("clientmix", base(Policy{Name: "clientmix", ClientMix: []ClientClass{
		{Weight: 1, StagingFrac: 0.3, ReceiveCap: 30},
		{Weight: 2, StagingFrac: 0, ReceiveCap: 0},
	}}))

	// Controller seam: non-default admission selectors and DRM planner.
	// The default pair (least-loaded + chain-dfs) is pinned by every
	// other cell; these pin the alternates, one of them audited so the
	// admission-feasible tap rides the fixture too.
	add("admission-firstfit", base(Policy{Name: "admission-firstfit", StagingFrac: 0.2, Selector: SelectorFirstFit}))
	admRand := base(drm(Policy{Name: "admission-random", StagingFrac: 0.2, Selector: SelectorRandomFeasible}, 1, 1))
	admRand.Audit = true
	add("admission-random", admRand)
	add("planner-direct", base(drm(Policy{Name: "planner-direct", StagingFrac: 0.2, Planner: PlannerDirectOnly}, UnlimitedHops, 2)))

	// Failure rescue mid-run.
	fail := base(drm(Policy{Name: "failover", StagingFrac: 0.2}, UnlimitedHops, 1))
	fail.FailServer, fail.FailAtHours = 2, 1
	add("failover", fail)

	// Stochastic failure/recovery churn with the full fault-tolerance
	// stack: retry queue, degraded-mode playback, and DRM rescue. Audit
	// is on so the fixture also pins the tap-instrumented path.
	churn := base(drm(Policy{
		Name: "fault-churn", StagingFrac: 0.2,
		RetryQueue: true, RetryPatienceSec: 120, RetryBackoffSec: 15,
		DegradedPlayback: true, DegradedRetrySec: 5,
	}, UnlimitedHops, 1))
	churn.Faults = faults.Config{MTBFHours: 1, MTTRHours: 0.2}
	churn.Audit = true
	add("fault-churn", churn)

	// Scripted cold-recovery trace: a wiped server rejoins with empty
	// storage and is rebuilt through dynamic replication.
	coldTrace := base(drm(Policy{
		Name: "fault-cold-trace", StagingFrac: 0.2, Replicate: true,
		DegradedPlayback: true, DegradedRetrySec: 5,
	}, 1, 1))
	coldTrace.Faults = faults.Config{Trace: []faults.Event{
		{AtHours: 0.25, Server: 1, Kind: faults.KindFail},
		{AtHours: 0.5, Server: 1, Kind: faults.KindRecover, Cold: true},
		{AtHours: 1.0, Server: 3, Kind: faults.KindFail},
		{AtHours: 1.4, Server: 3, Kind: faults.KindRecover},
	}}
	coldTrace.Audit = true
	add("fault-cold-trace", coldTrace)

	// Stochastic brownout churn interleaved with failures: the
	// three-state fault machine (up/down/dimmed), slot rescaling, and
	// the rescue → park → drop ladder over dimmed capacity, audited so
	// the effective-capacity rule rides the fixture.
	brown := base(drm(Policy{
		Name: "brownout-churn", StagingFrac: 0.2,
		RetryQueue: true, RetryPatienceSec: 120, RetryBackoffSec: 15,
		DegradedPlayback: true, DegradedRetrySec: 5,
	}, UnlimitedHops, 1))
	brown.Faults = faults.Config{
		MTBFHours: 2, MTTRHours: 0.2,
		BrownoutMTBFHours: 1, BrownoutMTTRHours: 0.3, BrownoutFraction: 0.5,
	}
	brown.Audit = true
	add("brownout-churn", brown)

	// Class-based load shedding through a flash crowd: two tiers, the
	// shed watermark, and the thinned arrival stream, audited so the
	// overload-shedding rule and per-class accounting ride the fixture.
	shed := base(drm(Policy{
		Name: "overload-shed", StagingFrac: 0.2,
		RetryQueue: true, RetryPatienceSec: 120, RetryBackoffSec: 15,
		Classes: []TrafficClass{
			{Name: "premium", Share: 1, RetryPatienceSec: 600},
			{Name: "standard", Share: 3},
		},
		ShedWatermark: 0.7,
	}, 1, 1))
	shed.Curve.FlashAt = 1800
	shed.Curve.FlashDuration = 3600
	shed.Curve.FlashFactor = 3
	shed.Audit = true
	add("overload-shed", shed)

	// Diurnal modulation stacked on a flash window with no classes: the
	// non-stationary generator alone, pinning the thinning RNG stream.
	flash := base(Policy{Name: "flash-diurnal", StagingFrac: 0.2})
	flash.Curve.DiurnalAmp = 0.5
	flash.Curve.DiurnalPeriod = 3600
	flash.Curve.FlashAt = 900
	flash.Curve.FlashDuration = 1800
	flash.Curve.FlashFactor = 2
	flash.Curve.FlashVideo = 3
	add("flash-diurnal", flash)

	// Audited runs pin the instrumented allocation path (full feed-order
	// reporting) to the same results as the bare one.
	audited := base(PolicyP4())
	audited.Audit = true
	add("audited-p4", audited)
	auditedInt := base(drm(Policy{Name: "audited-intermittent", StagingFrac: 0.2, Intermittent: true}, 1, 1))
	auditedInt.Audit = true
	add("audited-intermittent", auditedInt)

	// Edge/proxy tier: prefix caching splits every hit into an
	// edge-served head and a cluster suffix stream with a nonzero start
	// offset. The bare cell pins the probe + suffix-admission path; the
	// batch cell adds batch-prefix joins (audited, so the edge-accounting
	// rule and the EdgeServe tap ride the fixture); the DRM cell pins
	// suffix streams crossing migration and the lru fill order.
	edgePol := Policy{
		Name: "edge-unicast", StagingFrac: 0.2,
		EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 90000,
	}
	add("edge-unicast", base(edgePol))
	edgeBatch := edgePol
	edgeBatch.Name = "edge-batch"
	edgeBatch.BatchPolicy = BatchPolicyBatchPrefix
	edgeBatch.BatchWindowSec = 300
	edgeBatchCell := base(edgeBatch)
	edgeBatchCell.Audit = true
	add("edge-batch", edgeBatchCell)
	edgeDRM := drm(Policy{
		Name: "edge-drm", StagingFrac: 0.2,
		EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 90000,
		EdgeCachePolicy: EdgeCacheLRU,
		BatchPolicy:     BatchPolicyBatchPrefix, BatchWindowSec: 300,
	}, 1, 1)
	add("edge-drm", base(edgeDRM))

	return m
}

// TestGoldenEquivalence runs the scenario matrix and demands that every
// Result field matches the checked-in fixture bit-for-bit. JSON float
// encoding uses the shortest round-trippable representation, so decoded
// fixtures compare exactly with ==.
func TestGoldenEquivalence(t *testing.T) {
	matrix := goldenMatrix()

	got := make(map[string]Result, len(matrix)+3)
	for _, cell := range matrix {
		res, err := Run(cell.Sc)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		got[cell.Name] = *res
	}
	// Multi-trial aggregation derives per-trial seeds; pin each trial.
	agg, err := RunTrials(goldenMatrix()[5].Sc, 3) // drm-hops1
	if err != nil {
		t.Fatalf("trials: %v", err)
	}
	for i, r := range agg.Results {
		got["drm-hops1-trial"+string(rune('0'+i))] = *r
	}

	if *updateGolden {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make([]goldenEntry, 0, len(names))
		for _, n := range names {
			ordered = append(ordered, goldenEntry{Name: n, Result: got[n]})
		}
		data, err := json.MarshalIndent(ordered, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenEquivPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenEquivPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(ordered), goldenEquivPath)
		return
	}

	want := loadGoldenFixtures(t)
	seen := make(map[string]bool, len(want))
	for _, w := range want {
		seen[w.Name] = true
		g, ok := got[w.Name]
		if !ok {
			t.Errorf("%s: fixture present but scenario missing from matrix", w.Name)
			continue
		}
		matchGolden(t, w.Name, g, w.Result)
	}
	for n := range got {
		if !seen[n] {
			t.Errorf("%s: scenario has no fixture (run -update-golden)", n)
		}
	}
}
