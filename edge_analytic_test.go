package semicont

import (
	"math"
	"testing"

	"semicont/internal/analytic"
	"semicont/internal/catalog"
	"semicont/internal/edge"
	"semicont/internal/rng"
)

// TestEdgeEgressMatchesAnalyticBound cross-checks the simulator against
// internal/analytic's edge egress model on a fully provisioned cache
// (every prefix cached, so the per-video prefix volumes are exact and
// the bound's "everything admitted" assumption holds — the residual
// cluster load is far below capacity).
//
// Unicast: with no batching the bound is an equality in expectation —
// every admitted request costs the cluster exactly its suffix — so the
// simulated egress must land within 5% of rate × horizon (Poisson
// composition noise plus end-of-horizon truncation stay near 2% at
// ~6000 arrivals).
//
// Batch-prefix: the renewal bound assumes every arrival within the
// window joins the leader's stream, which the simulator only achieves
// when a joinable stream is actually ongoing — so the simulated egress
// must sit at or above the bound, and at or below the unicast run.
func TestEdgeEgressMatchesAnalyticBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour analytic cross-check skipped in -short mode")
	}
	const prefixSec = 900
	base := Scenario{
		System: SmallSystem(),
		Policy: Policy{
			Name:          "edge-analytic",
			Placement:     EvenPlacement,
			StagingFrac:   0.2,
			Migration:     true,
			EdgeNodes:     2,
			EdgePrefixSec: prefixSec,
			EdgeCacheMb:   1e9,
		},
		Theta:        0.271,
		HorizonHours: 12,
		Seed:         1,
	}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 || res.Reneged != 0 {
		t.Fatalf("denials on the fully cached run (%d rejected, %d reneged): the bound assumes every arrival is admitted",
			res.Rejected, res.Reneged)
	}

	// Reconstruct the run's exact catalog (same config, same derived
	// seed) and reproduce a node's content with the exported fill rule.
	sys := base.System
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: sys.NumVideos,
		MinLength: sys.MinVideoLength,
		MaxLength: sys.MaxVideoLength,
		ViewRate:  sys.ViewRate,
		Theta:     base.Theta,
	}, rng.New(rng.DeriveSeed(base.Seed, seedCatalog)))
	if err != nil {
		t.Fatal(err)
	}
	n := cat.Len()
	prefix := make([]float64, n)
	for v := 0; v < n; v++ {
		p := prefixSec * sys.ViewRate
		if s := cat.Video(v).Size; p > s {
			p = s
		}
		prefix[v] = p
	}
	cached := make([]bool, n)
	edge.GreedyFill(prefix, base.Policy.EdgeCacheMb, cached)
	model := &analytic.EdgeModel{
		Rate:     make([]float64, n),
		SizeMb:   make([]float64, n),
		PrefixMb: make([]float64, n),
	}
	for v := 0; v < n; v++ {
		vid := cat.Video(v)
		model.Rate[v] = res.ArrivalRate * vid.Prob
		model.SizeMb[v] = vid.Size
		if cached[v] {
			model.PrefixMb[v] = prefix[v]
		}
	}

	horizon := base.HorizonHours * 3600
	bound, err := model.EgressRate()
	if err != nil {
		t.Fatal(err)
	}
	pred := bound * horizon
	if rel := math.Abs(res.ClusterEgressMb-pred) / pred; rel > 0.05 {
		t.Errorf("unicast egress %.0f Mb vs analytic %.0f Mb: %.1f%% off (want ≤5%%)",
			res.ClusterEgressMb, pred, 100*rel)
	}

	bsc := base
	bsc.Policy.BatchPolicy = BatchPolicyBatchPrefix
	bsc.Policy.BatchWindowSec = 300
	bres, err := Run(bsc)
	if err != nil {
		t.Fatal(err)
	}
	model.WindowSec = bsc.Policy.BatchWindowSec
	bbound, err := model.EgressRate()
	if err != nil {
		t.Fatal(err)
	}
	if bres.BatchedJoins == 0 {
		t.Error("batch-prefix run produced no joins")
	}
	if bpred := bbound * horizon; bres.ClusterEgressMb < bpred*0.95 {
		t.Errorf("batched egress %.0f Mb below the analytic lower bound %.0f Mb",
			bres.ClusterEgressMb, bpred)
	}
	if bres.ClusterEgressMb > res.ClusterEgressMb+1e-6 {
		t.Errorf("batching raised egress (%.0f Mb vs unicast %.0f Mb)",
			bres.ClusterEgressMb, res.ClusterEgressMb)
	}
}
